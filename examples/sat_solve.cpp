/// \file sat_solve.cpp
/// Standalone DIMACS front end for the built-in CDCL solver — useful for
/// exercising the SAT substrate on standard benchmark files.
///
///   sat_solve [--preprocess] [--no-restarts] [--stats] [--explain]
///             [--threads N [--deterministic]]
///             [--proof FILE [--binary-proof]] [file.cnf]
///
/// Reads DIMACS CNF from the file (or stdin), prints the SAT-competition
/// style result ("s SATISFIABLE" + "v ..." model lines, or
/// "s UNSATISFIABLE"). Exit code: 10 = SAT, 20 = UNSAT (competition
/// convention), 2 = input error.
///
/// With --threads N (N != 1), the parallel portfolio solver races N
/// diversified CDCL workers with clause sharing (N = 0 picks the hardware
/// concurrency); --deterministic selects its reproducible lock-step mode.
/// See docs/PARALLEL.md.
///
/// With --proof FILE, every preprocessing step and solver inference is
/// logged as a DRAT proof (text by default, binary with --binary-proof);
/// on UNSAT the file can be validated with `dratcheck file.cnf FILE`.
/// Portfolio proofs are winner-only (clause sharing is disabled while a
/// proof is attached).
///
/// With --explain, the proof is captured in memory, an UNSAT verdict is
/// certified in-process with the independent DRAT checker, and the indices
/// of the original clauses in the certified core are printed as "c core"
/// comments (the CNF-level half of the provenance pipeline in
/// docs/EXPLAIN.md). Combines with --proof: the captured proof is then also
/// serialized to the file.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "sat/dimacs.hpp"
#include "sat/drat_check.hpp"
#include "sat/portfolio.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

using namespace etcs::sat;

int main(int argc, char** argv) {
    bool runPreprocess = false;
    bool noRestarts = false;
    bool printStats = false;
    bool binaryProof = false;
    bool deterministic = false;
    bool explain = false;
    int threads = 1;
    const char* proofPath = nullptr;
    const char* path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--preprocess") == 0) {
            runPreprocess = true;
        } else if (std::strcmp(argv[i], "--no-restarts") == 0) {
            noRestarts = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            printStats = true;
        } else if (std::strcmp(argv[i], "--binary-proof") == 0) {
            binaryProof = true;
        } else if (std::strcmp(argv[i], "--deterministic") == 0) {
            deterministic = true;
        } else if (std::strcmp(argv[i], "--explain") == 0) {
            explain = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
            if (threads < 0) {
                std::cerr << "c --threads expects a count >= 0\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--proof") == 0 && i + 1 < argc) {
            proofPath = argv[++i];
        } else if (argv[i][0] == '-') {
            std::cerr << "usage: sat_solve [--preprocess] [--no-restarts] [--stats] "
                         "[--explain] [--threads N [--deterministic]] "
                         "[--proof FILE [--binary-proof]] [file.cnf]\n";
            return 2;
        } else {
            path = argv[i];
        }
    }

    try {
        CnfFormula formula;
        if (path != nullptr) {
            std::ifstream in(path);
            if (!in) {
                std::cerr << "c cannot open " << path << "\n";
                return 2;
            }
            formula = readDimacs(in);
        } else {
            formula = readDimacs(std::cin);
        }
        std::cout << "c parsed " << formula.numVariables << " variables, "
                  << formula.clauses.size() << " clauses\n";

        std::ofstream proofFile;
        std::unique_ptr<ProofWriter> fileProof;
        if (proofPath != nullptr) {
            proofFile.open(proofPath,
                           binaryProof ? std::ios::out | std::ios::binary : std::ios::out);
            if (!proofFile) {
                std::cerr << "c cannot open " << proofPath << "\n";
                return 2;
            }
            if (binaryProof) {
                fileProof = std::make_unique<BinaryDratWriter>(proofFile);
            } else {
                fileProof = std::make_unique<TextDratWriter>(proofFile);
            }
        }

        // --explain captures the proof in memory so it can be checked
        // in-process against the original (pre-preprocessing) formula; the
        // file writer, when present, gets the same proof replayed afterwards.
        MemoryProofWriter memoryProof;
        CnfFormula original;
        if (explain) {
            original = formula;
        }
        ProofWriter* proof =
            explain ? static_cast<ProofWriter*>(&memoryProof) : fileProof.get();

        const auto finishProof = [&] {
            if (explain && fileProof) {
                writeDrat(*fileProof, memoryProof.proof());
            }
            if (fileProof) {
                fileProof->flush();
            }
        };
        const auto certifyCore = [&] {
            const DratCheckResult check = checkDrat(original, memoryProof.proof());
            if (!check.verified) {
                std::cout << "c explain: DRAT certification FAILED: " << check.error
                          << "\n";
                return;
            }
            std::cout << "c explain: certified UNSAT core: "
                      << check.coreClauseIndices.size() << " of "
                      << original.clauses.size() << " original clauses ("
                      << check.stats.verifiedLemmas << " verified lemmas)\n";
            std::cout << "c core";
            for (const std::size_t index : check.coreClauseIndices) {
                std::cout << ' ' << index;
            }
            std::cout << "\n";
        };

        std::vector<Literal> fixed;
        if (runPreprocess) {
            const auto pre = preprocess(formula, proof);
            std::cout << "c preprocess: " << pre.stats.propagatedUnits << " units, "
                      << pre.stats.eliminatedPureLiterals << " pure, "
                      << pre.stats.subsumedClauses << " subsumed, "
                      << pre.stats.strengthenedClauses << " strengthened ("
                      << pre.stats.rounds << " rounds)\n";
            if (pre.unsatisfiable) {
                finishProof();
                if (explain) {
                    certifyCore();
                }
                std::cout << "s UNSATISFIABLE\n";
                return 20;
            }
            fixed = pre.fixedLiterals;
            fixed.insert(fixed.end(), pre.pureLiterals.begin(), pre.pureLiterals.end());
        }

        std::unique_ptr<PortfolioSolver> portfolio;
        Solver solver;
        SolveStatus status = SolveStatus::Unknown;
        if (threads != 1) {
            PortfolioOptions popts;
            popts.numThreads = threads;
            popts.deterministic = deterministic;
            portfolio = std::make_unique<PortfolioSolver>(popts);
            portfolio->setProofWriter(proof);
            for (int v = 0; v < formula.numVariables; ++v) {
                portfolio->addVariable();
            }
            for (const auto& clause : formula.clauses) {
                portfolio->addClause(clause);
            }
            std::cout << "c portfolio: " << portfolio->numThreads() << " workers"
                      << (deterministic ? ", deterministic" : "") << "\n";
            status = portfolio->solve();
            std::cout << "c portfolio winner: worker " << portfolio->lastWinner()
                      << "\n";
        } else {
            solver.options().useRestarts = !noRestarts;
            solver.setProofWriter(proof);
            for (int v = 0; v < formula.numVariables; ++v) {
                solver.addVariable();
            }
            for (const auto& clause : formula.clauses) {
                solver.addClause(clause);
            }
            status = solver.solve();
        }
        finishProof();
        if (printStats) {
            const auto& stats = portfolio ? portfolio->solverStats() : solver.stats();
            std::cout << "c decisions " << stats.decisions << ", conflicts "
                      << stats.conflicts << ", propagations " << stats.propagations
                      << ", restarts " << stats.restarts << ", learned "
                      << stats.learnedClauses << "\n";
            if (portfolio) {
                const auto& shared = portfolio->stats();
                std::cout << "c sharing: exported " << shared.exportedClauses
                          << ", imported " << shared.importedClauses << ", dropped "
                          << shared.droppedClauses << "\n";
            }
        }
        if (status == SolveStatus::Unsat) {
            if (explain) {
                certifyCore();
            }
            std::cout << "s UNSATISFIABLE\n";
            return 20;
        }
        std::cout << "s SATISFIABLE\nv";
        // The preprocessor's fixed/pure literals override the reduced
        // formula's (possibly unconstrained) values.
        std::vector<Value> model(static_cast<std::size_t>(formula.numVariables));
        for (Var v = 0; v < formula.numVariables; ++v) {
            model[static_cast<std::size_t>(v)] =
                portfolio ? portfolio->modelValue(v) : solver.modelValue(v);
        }
        for (Literal l : fixed) {
            model[static_cast<std::size_t>(l.var())] = l.sign() ? Value::False : Value::True;
        }
        for (Var v = 0; v < formula.numVariables; ++v) {
            std::cout << ' '
                      << (model[static_cast<std::size_t>(v)] == Value::True ? v + 1
                                                                            : -(v + 1));
        }
        std::cout << " 0\n";
        return 10;
    } catch (const etcs::Error& e) {
        std::cerr << "c error: " << e.what() << "\n";
        return 2;
    }
}
