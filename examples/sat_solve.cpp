/// \file sat_solve.cpp
/// Standalone DIMACS front end for the built-in CDCL solver — useful for
/// exercising the SAT substrate on standard benchmark files.
///
///   sat_solve [--preprocess] [--no-restarts] [--stats] [file.cnf]
///
/// Reads DIMACS CNF from the file (or stdin), prints the SAT-competition
/// style result ("s SATISFIABLE" + "v ..." model lines, or
/// "s UNSATISFIABLE"). Exit code: 10 = SAT, 20 = UNSAT (competition
/// convention), 2 = input error.
#include <cstring>
#include <fstream>
#include <iostream>

#include "sat/dimacs.hpp"
#include "sat/preprocess.hpp"
#include "sat/solver.hpp"

using namespace etcs::sat;

int main(int argc, char** argv) {
    bool runPreprocess = false;
    bool noRestarts = false;
    bool printStats = false;
    const char* path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--preprocess") == 0) {
            runPreprocess = true;
        } else if (std::strcmp(argv[i], "--no-restarts") == 0) {
            noRestarts = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            printStats = true;
        } else if (argv[i][0] == '-') {
            std::cerr << "usage: sat_solve [--preprocess] [--no-restarts] [--stats] "
                         "[file.cnf]\n";
            return 2;
        } else {
            path = argv[i];
        }
    }

    try {
        CnfFormula formula;
        if (path != nullptr) {
            std::ifstream in(path);
            if (!in) {
                std::cerr << "c cannot open " << path << "\n";
                return 2;
            }
            formula = readDimacs(in);
        } else {
            formula = readDimacs(std::cin);
        }
        std::cout << "c parsed " << formula.numVariables << " variables, "
                  << formula.clauses.size() << " clauses\n";

        std::vector<Literal> fixed;
        if (runPreprocess) {
            const auto pre = preprocess(formula);
            std::cout << "c preprocess: " << pre.stats.propagatedUnits << " units, "
                      << pre.stats.eliminatedPureLiterals << " pure, "
                      << pre.stats.subsumedClauses << " subsumed, "
                      << pre.stats.strengthenedClauses << " strengthened ("
                      << pre.stats.rounds << " rounds)\n";
            if (pre.unsatisfiable) {
                std::cout << "s UNSATISFIABLE\n";
                return 20;
            }
            fixed = pre.fixedLiterals;
            fixed.insert(fixed.end(), pre.pureLiterals.begin(), pre.pureLiterals.end());
        }

        Solver solver;
        solver.options().useRestarts = !noRestarts;
        for (int v = 0; v < formula.numVariables; ++v) {
            solver.addVariable();
        }
        for (const auto& clause : formula.clauses) {
            solver.addClause(clause);
        }

        const SolveStatus status = solver.solve();
        if (printStats) {
            const auto& stats = solver.stats();
            std::cout << "c decisions " << stats.decisions << ", conflicts "
                      << stats.conflicts << ", propagations " << stats.propagations
                      << ", restarts " << stats.restarts << ", learned "
                      << stats.learnedClauses << "\n";
        }
        if (status == SolveStatus::Unsat) {
            std::cout << "s UNSATISFIABLE\n";
            return 20;
        }
        std::cout << "s SATISFIABLE\nv";
        // The preprocessor's fixed/pure literals override the reduced
        // formula's (possibly unconstrained) values.
        std::vector<Value> model(static_cast<std::size_t>(formula.numVariables));
        for (Var v = 0; v < formula.numVariables; ++v) {
            model[static_cast<std::size_t>(v)] = solver.modelValue(v);
        }
        for (Literal l : fixed) {
            model[static_cast<std::size_t>(l.var())] = l.sign() ? Value::False : Value::True;
        }
        for (Var v = 0; v < formula.numVariables; ++v) {
            std::cout << ' '
                      << (model[static_cast<std::size_t>(v)] == Value::True ? v + 1
                                                                            : -(v + 1));
        }
        std::cout << " 0\n";
        return 10;
    } catch (const etcs::Error& e) {
        std::cerr << "c error: " << e.what() << "\n";
        return 2;
    }
}
