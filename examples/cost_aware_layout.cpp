/// \file cost_aware_layout.cpp
/// Cost-aware VSS layout generation: instead of simply minimizing the number
/// of virtual borders (paper Sec. III-C), weight each candidate border with
/// an installation cost.
///
/// On the running example the count-minimal layout splits the side track
/// through station C. Suppose that border is expensive (platform area,
/// signalling constraints): the weighted generator then finds the
/// alternative single border on the exit track, which realizes the same
/// schedule at a tenth of the cost.
#include <iostream>

#include "core/analysis.hpp"
#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

int describeLayout(const core::Instance& instance, const studies::CaseStudy& study,
                   const char* label, const core::VssLayout& layout,
                   const std::function<int(SegNodeId)>& cost) {
    const auto& graph = instance.graph();
    int total = 0;
    std::cout << label << ":\n";
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        const SegNodeId node{n};
        if (graph.node(node).fixedBorder || !layout.flags()[n]) {
            continue;
        }
        total += cost(node);
        std::cout << "  border (cost " << cost(node) << ") between";
        for (SegmentId s : graph.segmentsAt(node)) {
            std::cout << " " << graph.segmentLabel(s);
        }
        std::cout << "\n";
    }
    std::cout << "  => total cost " << total << ", " << layout.sectionCount(graph)
              << " sections\n\n";
    (void)study;
    return total;
}

}  // namespace

int main() {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    const auto& graph = instance.graph();

    // Cost model: a virtual border on the side track through station C
    // costs 10 (platform area); anywhere else costs 1.
    auto cost = [&](SegNodeId node) {
        for (SegmentId s : graph.segmentsAt(node)) {
            if (study.network.track(graph.segment(s).track).name == "side") {
                return 10;
            }
        }
        return 1;
    };

    std::cout << "=== Cost-aware layout generation on the running example ===\n"
              << "cost model: border on the station-C side track = 10, elsewhere = 1\n\n";

    const auto plain = core::generateLayout(instance);
    if (!plain.feasible) {
        std::cout << "schedule not realizable\n";
        return 1;
    }
    const int plainCost = describeLayout(instance, study,
                                         "count-minimal layout (plain generation)",
                                         plain.solution->layout, cost);

    const auto weighted = core::generateLayoutWeighted(instance, cost);
    if (!weighted.feasible) {
        std::cout << "weighted generation unexpectedly infeasible\n";
        return 1;
    }
    const int weightedCost = describeLayout(instance, study,
                                            "cost-minimal layout (weighted generation)",
                                            weighted.solution->layout, cost);

    // Both layouts must actually carry the schedule.
    const bool plainWorks = core::verifySchedule(instance, plain.solution->layout).feasible;
    const bool weightedWorks =
        core::verifySchedule(instance, weighted.solution->layout).feasible;
    std::cout << "both layouts verified: " << (plainWorks && weightedWorks ? "yes" : "NO")
              << "\n"
              << "cost saving from weighting: " << plainCost - weightedCost << " units\n";
    return weightedCost <= plainCost && plainWorks && weightedWorks ? 0 : 1;
}
