/// \file etcs_cli.cpp
/// Command-line front end: run the paper's design tasks on network/scenario
/// files (formats documented in railway/io.hpp).
///
///   etcs_cli verify   <network.rail> <scenario.sched> --rs <m> --rt <s>
///   etcs_cli generate <network.rail> <scenario.sched> --rs <m> --rt <s> [--dot out.dot]
///   etcs_cli optimize <network.rail> <scenario.sched> --rs <m> --rt <s> [--dot out.dot]
///   etcs_cli encode   <network.rail> <scenario.sched> --rs <m> --rt <s> --cnf out.cnf [--pure]
///
/// `encode` exports the satisfiability instance in DIMACS CNF format
/// (free-layout generation encoding; --pure pins the pure TTD layout as in
/// the verification task) for use with any external SAT solver.
///
/// Exit code: 0 = task solved (verification feasible / layout found),
///            1 = proven infeasible, 2 = usage or input error.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cnf/collect.hpp"
#include "core/encoder.hpp"
#include "core/explain.hpp"
#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "railway/dot.hpp"
#include "railway/io.hpp"

using namespace etcs;

namespace {

struct CliOptions {
    std::string command;
    std::string networkFile;
    std::string scenarioFile;
    Meters spatial{};
    Seconds temporal{};
    std::optional<std::string> dotFile;
    std::optional<std::string> cnfFile;
    bool pureLayout = false;
    bool explain = false;
    std::optional<std::string> explainJsonFile;
    int threads = 1;
};

void usage() {
    std::cerr << "usage: etcs_cli <verify|generate|optimize|encode> <network.rail> "
                 "<scenario.sched> --rs <meters> --rt <seconds> [--dot <file>] "
                 "[--cnf <file>] [--pure] [--threads <n>] [--explain] "
                 "[--explain-json <file>]\n";
}

std::optional<CliOptions> parseArguments(int argc, char** argv) {
    if (argc < 4) {
        return std::nullopt;
    }
    CliOptions options;
    options.command = argv[1];
    options.networkFile = argv[2];
    options.scenarioFile = argv[3];
    for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--pure") == 0) {
            options.pureLayout = true;
            continue;
        }
        if (std::strcmp(argv[i], "--explain") == 0) {
            options.explain = true;
            continue;
        }
        if (i + 1 >= argc) {
            return std::nullopt;
        }
        if (std::strcmp(argv[i], "--rs") == 0) {
            options.spatial = Meters(std::atoll(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--rt") == 0) {
            options.temporal = Seconds(std::atoll(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--dot") == 0) {
            options.dotFile = argv[i + 1];
        } else if (std::strcmp(argv[i], "--cnf") == 0) {
            options.cnfFile = argv[i + 1];
        } else if (std::strcmp(argv[i], "--explain-json") == 0) {
            options.explainJsonFile = argv[i + 1];
            options.explain = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            options.threads = std::atoi(argv[i + 1]);
            if (options.threads < 0) {
                std::cerr << "error: --threads expects a count >= 0\n";
                return std::nullopt;
            }
        } else {
            return std::nullopt;
        }
        ++i;
    }
    if (options.spatial.count() <= 0 || options.temporal.count() <= 0) {
        std::cerr << "error: --rs and --rt are required and must be positive\n";
        return std::nullopt;
    }
    if (options.command != "verify" && options.command != "generate" &&
        options.command != "optimize" && options.command != "encode") {
        return std::nullopt;
    }
    if (options.command == "encode" && !options.cnfFile) {
        std::cerr << "error: encode requires --cnf <file>\n";
        return std::nullopt;
    }
    return options;
}

/// On an infeasible verdict with --explain: run the certified-core
/// explanation pipeline (see docs/EXPLAIN.md) and print the report; with
/// --explain-json also export the machine-readable report.
void maybeExplain(const CliOptions& options, const core::Instance& instance,
                  const core::VssLayout* fixedLayout) {
    if (!options.explain) {
        return;
    }
    const core::ExplainResult result = core::explainInfeasibility(instance, fixedLayout);
    core::writeExplanationText(std::cout, result);
    if (options.explainJsonFile) {
        std::ofstream out(*options.explainJsonFile);
        if (out) {
            core::writeExplanationJson(out, result);
            std::cout << "explanation JSON written to " << *options.explainJsonFile << "\n";
        } else {
            std::cerr << "error: cannot write " << *options.explainJsonFile << "\n";
        }
    }
}

void maybeWriteDot(const CliOptions& options, const rail::SegmentGraph& graph,
                   const core::VssLayout& layout) {
    if (!options.dotFile) {
        return;
    }
    std::ofstream out(*options.dotFile);
    rail::writeDot(out, graph, &layout.flags());
    std::cout << "layout drawing written to " << *options.dotFile << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = parseArguments(argc, argv);
    if (!options) {
        usage();
        return 2;
    }
    try {
        std::ifstream networkIn(options->networkFile);
        if (!networkIn) {
            std::cerr << "error: cannot open " << options->networkFile << "\n";
            return 2;
        }
        const rail::Network network = rail::readNetwork(networkIn);

        std::ifstream scenarioIn(options->scenarioFile);
        if (!scenarioIn) {
            std::cerr << "error: cannot open " << options->scenarioFile << "\n";
            return 2;
        }
        const rail::Scenario scenario = rail::readScenario(scenarioIn, network);

        const Resolution resolution{options->spatial, options->temporal};
        const core::Instance instance(network, scenario.trains, scenario.schedule, resolution);
        std::cout << "network '" << network.name() << "': "
                  << instance.graph().numSegments() << " segments, "
                  << instance.horizonSteps() << " time steps, " << instance.numRuns()
                  << " trains\n";

        if (options->command == "encode") {
            cnf::CollectingBackend collector;
            core::Encoder encoder(collector, instance);
            const core::VssLayout pure(instance.graph());
            encoder.encode(options->pureLayout ? &pure : nullptr);
            if (!sat::writeDimacsFile(*options->cnfFile, collector.formula())) {
                std::cerr << "error: cannot write " << *options->cnfFile << "\n";
                return 2;
            }
            std::cout << "DIMACS instance written to " << *options->cnfFile << " ("
                      << collector.numVariables() << " vars, " << collector.numClauses()
                      << " clauses, " << (options->pureLayout ? "pure-TTD" : "free")
                      << " layout)\n";
            return 0;
        }
        core::TaskOptions taskOptions;
        taskOptions.threads = options->threads;
        if (options->threads != 1) {
            std::cout << "solver: portfolio with "
                      << (options->threads == 0 ? "auto" : std::to_string(options->threads))
                      << " workers\n";
        }
        if (options->command == "verify") {
            const core::VssLayout pure(instance.graph());
            const auto result = core::verifySchedule(instance, pure, taskOptions);
            std::cout << "verification on the pure TTD layout ("
                      << pure.sectionCount(instance.graph()) << " sections): "
                      << (result.feasible ? "FEASIBLE" : "INFEASIBLE") << " ["
                      << result.stats.numVariables << " vars, "
                      << result.stats.runtimeSeconds << " s]\n";
            if (!result.feasible) {
                maybeExplain(*options, instance, &pure);
            }
            return result.feasible ? 0 : 1;
        }
        if (options->command == "generate") {
            const auto result = core::generateLayout(instance, taskOptions);
            if (!result.feasible) {
                std::cout << "no VSS layout can realize this schedule\n";
                maybeExplain(*options, instance, nullptr);
                return 1;
            }
            std::cout << "layout found: " << result.sectionCount << " TTD/VSS sections ("
                      << result.solution->layout.virtualBorderCount(instance.graph())
                      << " virtual borders) [" << result.stats.numVariables << " vars, "
                      << result.stats.runtimeSeconds << " s]\n";
            maybeWriteDot(*options, instance.graph(), result.solution->layout);
            return 0;
        }
        // optimize
        const auto result = core::optimizeSchedule(instance, taskOptions);
        if (!result.feasible) {
            std::cout << "the trains cannot complete within the scenario horizon\n";
            maybeExplain(*options, instance, nullptr);
            return 1;
        }
        std::cout << "optimal completion: " << result.completionSteps << " time steps ("
                  << resolution.timeOf(result.completionSteps).clock() << ") with "
                  << result.sectionCount << " sections [" << result.stats.runtimeSeconds
                  << " s]\n";
        for (std::size_t r = 0; r < instance.numRuns(); ++r) {
            std::cout << "  " << scenario.trains.train(instance.runs()[r].train).name
                      << " arrives "
                      << resolution.timeOf(result.solution->traces[r].firstArrivalStep).clock()
                      << "\n";
        }
        maybeWriteDot(*options, instance.graph(), result.solution->layout);
        return 0;
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
