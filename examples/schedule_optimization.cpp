/// \file schedule_optimization.cpp
/// The paper's third design task on the running example: reproduce the
/// improved schedule of Fig. 2b, then animate the witness plan step by step.
#include <iomanip>
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

using namespace etcs;

int main() {
    const auto study = studies::runningExample();
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);

    const auto result = core::optimizeSchedule(open);
    if (!result.feasible) {
        std::cout << "the schedule cannot be completed within the horizon\n";
        return 1;
    }

    // Fig. 2b-style table: train, start, goal, speed, length, dep, arr.
    std::cout << "Improved schedule (cf. paper Fig. 2b) -- completes in "
              << result.completionSteps << " time steps using " << result.sectionCount
              << " TTD/VSS sections:\n\n";
    std::cout << std::left << std::setw(8) << "Train" << std::setw(7) << "Start"
              << std::setw(6) << "Goal" << std::setw(14) << "Speed[km/h]" << std::setw(11)
              << "Length[m]" << std::setw(11) << "Departure" << "Arrival\n";
    for (std::size_t r = 0; r < open.numRuns(); ++r) {
        const auto& run = open.runs()[r];
        const auto& schedRun = study.openSchedule.runs()[r];
        const auto& train = study.trains.train(run.train);
        const auto& trace = result.solution->traces[r];
        std::cout << std::left << std::setw(8) << train.name << std::setw(7)
                  << study.network.station(schedRun.origin).name << std::setw(6)
                  << study.network.station(schedRun.stops.back().station).name
                  << std::setw(14) << train.maxSpeed.kmPerHour() << std::setw(11)
                  << train.length.count() << std::setw(11)
                  << study.resolution.timeOf(run.departureStep).clock()
                  << study.resolution.timeOf(trace.firstArrivalStep).clock() << "\n";
    }

    // Step-by-step animation of the witness movement plan.
    std::cout << "\nWitness plan (segments occupied per step):\n";
    const auto& graph = open.graph();
    for (int t = 0; t < result.completionSteps; ++t) {
        std::cout << "  t=" << std::setw(2) << t << " ("
                  << study.resolution.timeOf(t).clock() << ")";
        for (std::size_t r = 0; r < open.numRuns(); ++r) {
            const auto& occupied = result.solution->traces[r].occupied[
                static_cast<std::size_t>(t)];
            std::cout << "  " << study.trains.train(open.runs()[r].train).name << "[";
            for (std::size_t i = 0; i < occupied.size(); ++i) {
                std::cout << (i > 0 ? " " : "") << graph.segmentLabel(occupied[i]);
            }
            std::cout << "]";
        }
        std::cout << "\n";
    }

    std::cout << "\nFor comparison, the original Fig. 1b schedule spans "
              << core::Instance(study.network, study.trains, study.timedSchedule,
                                study.resolution)
                     .horizonSteps()
              << " steps.\n";
    return 0;
}
