file(REMOVE_RECURSE
  "CMakeFiles/fig2_optimized_schedule.dir/fig2_optimized_schedule.cpp.o"
  "CMakeFiles/fig2_optimized_schedule.dir/fig2_optimized_schedule.cpp.o.d"
  "fig2_optimized_schedule"
  "fig2_optimized_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_optimized_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
