file(REMOVE_RECURSE
  "CMakeFiles/fig4_networks.dir/fig4_networks.cpp.o"
  "CMakeFiles/fig4_networks.dir/fig4_networks.cpp.o.d"
  "fig4_networks"
  "fig4_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
