# Empty compiler generated dependencies file for fig4_networks.
# This may be replaced when dependencies are built.
