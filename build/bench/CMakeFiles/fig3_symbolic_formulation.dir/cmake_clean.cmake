file(REMOVE_RECURSE
  "CMakeFiles/fig3_symbolic_formulation.dir/fig3_symbolic_formulation.cpp.o"
  "CMakeFiles/fig3_symbolic_formulation.dir/fig3_symbolic_formulation.cpp.o.d"
  "fig3_symbolic_formulation"
  "fig3_symbolic_formulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_symbolic_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
