# Empty dependencies file for fig3_symbolic_formulation.
# This may be replaced when dependencies are built.
