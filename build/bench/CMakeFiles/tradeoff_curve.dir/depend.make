# Empty dependencies file for tradeoff_curve.
# This may be replaced when dependencies are built.
