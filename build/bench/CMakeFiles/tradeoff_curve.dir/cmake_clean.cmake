file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_curve.dir/tradeoff_curve.cpp.o"
  "CMakeFiles/tradeoff_curve.dir/tradeoff_curve.cpp.o.d"
  "tradeoff_curve"
  "tradeoff_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
