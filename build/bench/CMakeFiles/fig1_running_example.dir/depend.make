# Empty dependencies file for fig1_running_example.
# This may be replaced when dependencies are built.
