file(REMOVE_RECURSE
  "CMakeFiles/objectives.dir/objectives.cpp.o"
  "CMakeFiles/objectives.dir/objectives.cpp.o.d"
  "objectives"
  "objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
