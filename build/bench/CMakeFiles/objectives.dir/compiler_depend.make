# Empty compiler generated dependencies file for objectives.
# This may be replaced when dependencies are built.
