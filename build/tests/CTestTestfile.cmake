# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/sat_random_test[1]_include.cmake")
include("/root/repo/build/tests/dimacs_test[1]_include.cmake")
include("/root/repo/build/tests/amo_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
include("/root/repo/build/tests/minimize_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_minimize_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/dot_test[1]_include.cmake")
include("/root/repo/build/tests/segment_graph_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/dwell_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/encoder_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/validator_test[1]_include.cmake")
include("/root/repo/build/tests/studies_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/collect_test[1]_include.cmake")
