file(REMOVE_RECURSE
  "CMakeFiles/segment_graph_test.dir/segment_graph_test.cpp.o"
  "CMakeFiles/segment_graph_test.dir/segment_graph_test.cpp.o.d"
  "segment_graph_test"
  "segment_graph_test.pdb"
  "segment_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
