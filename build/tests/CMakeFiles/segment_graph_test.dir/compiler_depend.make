# Empty compiler generated dependencies file for segment_graph_test.
# This may be replaced when dependencies are built.
