# Empty dependencies file for amo_test.
# This may be replaced when dependencies are built.
