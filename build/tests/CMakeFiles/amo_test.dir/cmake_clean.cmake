file(REMOVE_RECURSE
  "CMakeFiles/amo_test.dir/amo_test.cpp.o"
  "CMakeFiles/amo_test.dir/amo_test.cpp.o.d"
  "amo_test"
  "amo_test.pdb"
  "amo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
