file(REMOVE_RECURSE
  "CMakeFiles/sat_random_test.dir/sat_random_test.cpp.o"
  "CMakeFiles/sat_random_test.dir/sat_random_test.cpp.o.d"
  "sat_random_test"
  "sat_random_test.pdb"
  "sat_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
