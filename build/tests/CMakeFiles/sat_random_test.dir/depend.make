# Empty dependencies file for sat_random_test.
# This may be replaced when dependencies are built.
