# Empty dependencies file for weighted_minimize_test.
# This may be replaced when dependencies are built.
