file(REMOVE_RECURSE
  "CMakeFiles/weighted_minimize_test.dir/weighted_minimize_test.cpp.o"
  "CMakeFiles/weighted_minimize_test.dir/weighted_minimize_test.cpp.o.d"
  "weighted_minimize_test"
  "weighted_minimize_test.pdb"
  "weighted_minimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_minimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
