
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/weighted_minimize_test.cpp" "tests/CMakeFiles/weighted_minimize_test.dir/weighted_minimize_test.cpp.o" "gcc" "tests/CMakeFiles/weighted_minimize_test.dir/weighted_minimize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/etcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/studies/CMakeFiles/etcs_studies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/etcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/etcs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/etcs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/etcs_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/railway/CMakeFiles/etcs_railway.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
