file(REMOVE_RECURSE
  "CMakeFiles/studies_test.dir/studies_test.cpp.o"
  "CMakeFiles/studies_test.dir/studies_test.cpp.o.d"
  "studies_test"
  "studies_test.pdb"
  "studies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/studies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
