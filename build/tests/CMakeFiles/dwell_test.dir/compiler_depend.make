# Empty compiler generated dependencies file for dwell_test.
# This may be replaced when dependencies are built.
