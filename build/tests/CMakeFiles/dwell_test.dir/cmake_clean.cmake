file(REMOVE_RECURSE
  "CMakeFiles/dwell_test.dir/dwell_test.cpp.o"
  "CMakeFiles/dwell_test.dir/dwell_test.cpp.o.d"
  "dwell_test"
  "dwell_test.pdb"
  "dwell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
