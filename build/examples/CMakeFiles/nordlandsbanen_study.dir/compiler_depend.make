# Empty compiler generated dependencies file for nordlandsbanen_study.
# This may be replaced when dependencies are built.
