file(REMOVE_RECURSE
  "CMakeFiles/nordlandsbanen_study.dir/nordlandsbanen_study.cpp.o"
  "CMakeFiles/nordlandsbanen_study.dir/nordlandsbanen_study.cpp.o.d"
  "nordlandsbanen_study"
  "nordlandsbanen_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nordlandsbanen_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
