# Empty compiler generated dependencies file for etcs_cli.
# This may be replaced when dependencies are built.
