# Empty dependencies file for etcs_cli.
# This may be replaced when dependencies are built.
