file(REMOVE_RECURSE
  "CMakeFiles/etcs_cli.dir/etcs_cli.cpp.o"
  "CMakeFiles/etcs_cli.dir/etcs_cli.cpp.o.d"
  "etcs_cli"
  "etcs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
