file(REMOVE_RECURSE
  "CMakeFiles/schedule_optimization.dir/schedule_optimization.cpp.o"
  "CMakeFiles/schedule_optimization.dir/schedule_optimization.cpp.o.d"
  "schedule_optimization"
  "schedule_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
