# Empty compiler generated dependencies file for schedule_optimization.
# This may be replaced when dependencies are built.
