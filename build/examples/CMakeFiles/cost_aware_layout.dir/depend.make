# Empty dependencies file for cost_aware_layout.
# This may be replaced when dependencies are built.
