file(REMOVE_RECURSE
  "CMakeFiles/cost_aware_layout.dir/cost_aware_layout.cpp.o"
  "CMakeFiles/cost_aware_layout.dir/cost_aware_layout.cpp.o.d"
  "cost_aware_layout"
  "cost_aware_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_aware_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
