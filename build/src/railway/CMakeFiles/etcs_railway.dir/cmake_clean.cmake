file(REMOVE_RECURSE
  "CMakeFiles/etcs_railway.dir/dot.cpp.o"
  "CMakeFiles/etcs_railway.dir/dot.cpp.o.d"
  "CMakeFiles/etcs_railway.dir/io.cpp.o"
  "CMakeFiles/etcs_railway.dir/io.cpp.o.d"
  "CMakeFiles/etcs_railway.dir/network.cpp.o"
  "CMakeFiles/etcs_railway.dir/network.cpp.o.d"
  "CMakeFiles/etcs_railway.dir/segment_graph.cpp.o"
  "CMakeFiles/etcs_railway.dir/segment_graph.cpp.o.d"
  "libetcs_railway.a"
  "libetcs_railway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_railway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
