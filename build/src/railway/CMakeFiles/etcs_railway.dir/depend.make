# Empty dependencies file for etcs_railway.
# This may be replaced when dependencies are built.
