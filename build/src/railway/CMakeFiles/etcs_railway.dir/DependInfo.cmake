
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/railway/dot.cpp" "src/railway/CMakeFiles/etcs_railway.dir/dot.cpp.o" "gcc" "src/railway/CMakeFiles/etcs_railway.dir/dot.cpp.o.d"
  "/root/repo/src/railway/io.cpp" "src/railway/CMakeFiles/etcs_railway.dir/io.cpp.o" "gcc" "src/railway/CMakeFiles/etcs_railway.dir/io.cpp.o.d"
  "/root/repo/src/railway/network.cpp" "src/railway/CMakeFiles/etcs_railway.dir/network.cpp.o" "gcc" "src/railway/CMakeFiles/etcs_railway.dir/network.cpp.o.d"
  "/root/repo/src/railway/segment_graph.cpp" "src/railway/CMakeFiles/etcs_railway.dir/segment_graph.cpp.o" "gcc" "src/railway/CMakeFiles/etcs_railway.dir/segment_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
