file(REMOVE_RECURSE
  "libetcs_railway.a"
)
