file(REMOVE_RECURSE
  "libetcs_opt.a"
)
