# Empty dependencies file for etcs_opt.
# This may be replaced when dependencies are built.
