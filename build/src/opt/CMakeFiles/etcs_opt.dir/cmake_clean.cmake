file(REMOVE_RECURSE
  "CMakeFiles/etcs_opt.dir/minimize.cpp.o"
  "CMakeFiles/etcs_opt.dir/minimize.cpp.o.d"
  "libetcs_opt.a"
  "libetcs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
