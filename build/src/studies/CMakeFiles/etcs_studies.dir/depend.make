# Empty dependencies file for etcs_studies.
# This may be replaced when dependencies are built.
