file(REMOVE_RECURSE
  "CMakeFiles/etcs_studies.dir/complex_layout.cpp.o"
  "CMakeFiles/etcs_studies.dir/complex_layout.cpp.o.d"
  "CMakeFiles/etcs_studies.dir/corridor.cpp.o"
  "CMakeFiles/etcs_studies.dir/corridor.cpp.o.d"
  "CMakeFiles/etcs_studies.dir/nordlandsbanen.cpp.o"
  "CMakeFiles/etcs_studies.dir/nordlandsbanen.cpp.o.d"
  "CMakeFiles/etcs_studies.dir/running_example.cpp.o"
  "CMakeFiles/etcs_studies.dir/running_example.cpp.o.d"
  "CMakeFiles/etcs_studies.dir/simple_layout.cpp.o"
  "CMakeFiles/etcs_studies.dir/simple_layout.cpp.o.d"
  "libetcs_studies.a"
  "libetcs_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
