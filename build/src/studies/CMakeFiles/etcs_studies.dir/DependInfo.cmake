
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/studies/complex_layout.cpp" "src/studies/CMakeFiles/etcs_studies.dir/complex_layout.cpp.o" "gcc" "src/studies/CMakeFiles/etcs_studies.dir/complex_layout.cpp.o.d"
  "/root/repo/src/studies/corridor.cpp" "src/studies/CMakeFiles/etcs_studies.dir/corridor.cpp.o" "gcc" "src/studies/CMakeFiles/etcs_studies.dir/corridor.cpp.o.d"
  "/root/repo/src/studies/nordlandsbanen.cpp" "src/studies/CMakeFiles/etcs_studies.dir/nordlandsbanen.cpp.o" "gcc" "src/studies/CMakeFiles/etcs_studies.dir/nordlandsbanen.cpp.o.d"
  "/root/repo/src/studies/running_example.cpp" "src/studies/CMakeFiles/etcs_studies.dir/running_example.cpp.o" "gcc" "src/studies/CMakeFiles/etcs_studies.dir/running_example.cpp.o.d"
  "/root/repo/src/studies/simple_layout.cpp" "src/studies/CMakeFiles/etcs_studies.dir/simple_layout.cpp.o" "gcc" "src/studies/CMakeFiles/etcs_studies.dir/simple_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/railway/CMakeFiles/etcs_railway.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
