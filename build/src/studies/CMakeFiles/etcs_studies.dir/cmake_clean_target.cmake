file(REMOVE_RECURSE
  "libetcs_studies.a"
)
