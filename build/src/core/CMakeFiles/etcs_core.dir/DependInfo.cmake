
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/etcs_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/etcs_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/encoder.cpp" "src/core/CMakeFiles/etcs_core.dir/encoder.cpp.o" "gcc" "src/core/CMakeFiles/etcs_core.dir/encoder.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/etcs_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/etcs_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/tasks.cpp" "src/core/CMakeFiles/etcs_core.dir/tasks.cpp.o" "gcc" "src/core/CMakeFiles/etcs_core.dir/tasks.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/etcs_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/etcs_core.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/railway/CMakeFiles/etcs_railway.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/etcs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/etcs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/etcs_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
