file(REMOVE_RECURSE
  "libetcs_core.a"
)
