# Empty compiler generated dependencies file for etcs_core.
# This may be replaced when dependencies are built.
