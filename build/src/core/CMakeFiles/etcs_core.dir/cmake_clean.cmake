file(REMOVE_RECURSE
  "CMakeFiles/etcs_core.dir/analysis.cpp.o"
  "CMakeFiles/etcs_core.dir/analysis.cpp.o.d"
  "CMakeFiles/etcs_core.dir/encoder.cpp.o"
  "CMakeFiles/etcs_core.dir/encoder.cpp.o.d"
  "CMakeFiles/etcs_core.dir/instance.cpp.o"
  "CMakeFiles/etcs_core.dir/instance.cpp.o.d"
  "CMakeFiles/etcs_core.dir/tasks.cpp.o"
  "CMakeFiles/etcs_core.dir/tasks.cpp.o.d"
  "CMakeFiles/etcs_core.dir/validator.cpp.o"
  "CMakeFiles/etcs_core.dir/validator.cpp.o.d"
  "libetcs_core.a"
  "libetcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
