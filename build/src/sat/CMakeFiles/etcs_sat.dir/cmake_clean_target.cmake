file(REMOVE_RECURSE
  "libetcs_sat.a"
)
