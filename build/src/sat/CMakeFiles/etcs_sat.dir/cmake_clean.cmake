file(REMOVE_RECURSE
  "CMakeFiles/etcs_sat.dir/dimacs.cpp.o"
  "CMakeFiles/etcs_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/etcs_sat.dir/preprocess.cpp.o"
  "CMakeFiles/etcs_sat.dir/preprocess.cpp.o.d"
  "CMakeFiles/etcs_sat.dir/solver.cpp.o"
  "CMakeFiles/etcs_sat.dir/solver.cpp.o.d"
  "libetcs_sat.a"
  "libetcs_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
