# Empty dependencies file for etcs_sat.
# This may be replaced when dependencies are built.
