# Empty dependencies file for etcs_cnf.
# This may be replaced when dependencies are built.
