file(REMOVE_RECURSE
  "CMakeFiles/etcs_cnf.dir/amo.cpp.o"
  "CMakeFiles/etcs_cnf.dir/amo.cpp.o.d"
  "CMakeFiles/etcs_cnf.dir/cardinality.cpp.o"
  "CMakeFiles/etcs_cnf.dir/cardinality.cpp.o.d"
  "CMakeFiles/etcs_cnf.dir/internal_backend.cpp.o"
  "CMakeFiles/etcs_cnf.dir/internal_backend.cpp.o.d"
  "CMakeFiles/etcs_cnf.dir/z3_backend.cpp.o"
  "CMakeFiles/etcs_cnf.dir/z3_backend.cpp.o.d"
  "libetcs_cnf.a"
  "libetcs_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
