file(REMOVE_RECURSE
  "libetcs_cnf.a"
)
