
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cnf/amo.cpp" "src/cnf/CMakeFiles/etcs_cnf.dir/amo.cpp.o" "gcc" "src/cnf/CMakeFiles/etcs_cnf.dir/amo.cpp.o.d"
  "/root/repo/src/cnf/cardinality.cpp" "src/cnf/CMakeFiles/etcs_cnf.dir/cardinality.cpp.o" "gcc" "src/cnf/CMakeFiles/etcs_cnf.dir/cardinality.cpp.o.d"
  "/root/repo/src/cnf/internal_backend.cpp" "src/cnf/CMakeFiles/etcs_cnf.dir/internal_backend.cpp.o" "gcc" "src/cnf/CMakeFiles/etcs_cnf.dir/internal_backend.cpp.o.d"
  "/root/repo/src/cnf/z3_backend.cpp" "src/cnf/CMakeFiles/etcs_cnf.dir/z3_backend.cpp.o" "gcc" "src/cnf/CMakeFiles/etcs_cnf.dir/z3_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/etcs_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
