file(REMOVE_RECURSE
  "CMakeFiles/etcs_sim.dir/simulator.cpp.o"
  "CMakeFiles/etcs_sim.dir/simulator.cpp.o.d"
  "libetcs_sim.a"
  "libetcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
