# Empty compiler generated dependencies file for etcs_sim.
# This may be replaced when dependencies are built.
