file(REMOVE_RECURSE
  "libetcs_sim.a"
)
