/// \file fig4_networks.cpp
/// Regenerates Fig. 4 of the paper: the "Simple Layout" (4a, three stations)
/// and "Complex Layout" (4b, six stations) networks, with their structural
/// statistics and the verdicts of all three design tasks on each.
#include <iomanip>
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

bool describe(const studies::CaseStudy& study, const char* figure, const char* sketch) {
    const core::Instance timed(study.network, study.trains, study.timedSchedule,
                               study.resolution);
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);

    std::cout << figure << ": " << study.name << "\n\n" << sketch << "\n";
    int stationCount = 0;
    for (const auto& station : study.network.stations()) {
        if (station.name.find("loop") == std::string::npos) {
            ++stationCount;
        }
    }
    std::cout << "  stations: " << stationCount << ", tracks: " << study.network.numTracks()
              << ", TTD sections: " << study.network.numTtds()
              << ", total length: " << study.network.totalLength().kilometers() << " km\n"
              << "  resolution: r_t = " << study.resolution.temporal.minutes()
              << " min, r_s = " << study.resolution.spatial.kilometers() << " km -> "
              << timed.graph().numSegments() << " segments, " << timed.horizonSteps()
              << " steps\n"
              << "  trains: " << timed.numRuns() << "\n\n";

    const core::VssLayout pure(timed.graph());
    const auto verification = core::verifySchedule(timed, pure);
    const auto generation = core::generateLayout(timed);
    const auto optimization = core::optimizeSchedule(open);

    std::cout << std::left << "  " << std::setw(14) << "Verification"
              << (verification.feasible ? "SAT  " : "UNSAT") << "  sections="
              << pure.sectionCount(timed.graph()) << "  t=" << std::fixed
              << std::setprecision(2) << verification.stats.runtimeSeconds << "s\n";
    std::cout << "  " << std::setw(14) << "Generation"
              << (generation.feasible ? "SAT  " : "UNSAT") << "  sections="
              << generation.sectionCount << "  t=" << generation.stats.runtimeSeconds
              << "s\n";
    std::cout << "  " << std::setw(14) << "Optimization"
              << (optimization.feasible ? "SAT  " : "UNSAT") << "  sections="
              << optimization.sectionCount << "  steps=" << optimization.completionSteps
              << "  t=" << optimization.stats.runtimeSeconds << "s\n\n";

    return !verification.feasible && generation.feasible && optimization.feasible;
}

}  // namespace

int main() {
    bool ok = true;
    ok &= describe(studies::simpleLayout(), "FIG. 4a",
                   "    St1 ==loop==\n"
                   "         |  (single line, 2 TTD blocks)\n"
                   "    St2 ==loop==\n"
                   "         |  (single line, 2 TTD blocks)\n"
                   "    St3 ==loop==\n");
    ok &= describe(studies::complexLayout(), "FIG. 4b",
                   "         St5           St6\n"
                   "          |             |\n"
                   "    St1--St2-----------St3--St4\n"
                   "    (every station a 2-track loop; lines split in 2 TTD blocks)\n");
    std::cout << (ok ? "shape check: OK" : "shape check: MISMATCH") << "\n";
    return ok ? 0 : 1;
}
