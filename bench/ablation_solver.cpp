/// \file ablation_solver.cpp
/// Ablation A2 (our addition, see DESIGN.md): contribution of individual
/// CDCL solver features -- conflict-clause minimization, restarts, phase
/// saving -- measured on a representative ETCS instance (the simple-layout
/// generation formula) and on a classic hard UNSAT family (pigeonhole).
#include <benchmark/benchmark.h>

#include "cnf/collect.hpp"
#include "sat/preprocess.hpp"
#include "core/encoder.hpp"
#include "core/tasks.hpp"
#include "core/instance.hpp"
#include "sat/solver.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

struct FeatureSet {
    bool minimize;
    bool restarts;
    bool phaseSaving;
    const char* label;
};

constexpr FeatureSet kFeatureSets[] = {
    {true, true, true, "full"},
    {false, true, true, "no-minimize"},
    {true, false, true, "no-restarts"},
    {true, true, false, "no-phase-saving"},
};

/// Collect the CNF of the simple-layout verification instance once.
const cnf::CollectingBackend& etcsFormula() {
    static const cnf::CollectingBackend collected = [] {
        cnf::CollectingBackend backend;
        const auto study = studies::simpleLayout();
        const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                      study.resolution);
        core::Encoder encoder(backend, instance);
        const core::VssLayout pure(instance.graph());
        encoder.encode(&pure);
        return backend;
    }();
    return collected;
}

void BM_SolverFeaturesOnEtcs(benchmark::State& state) {
    const FeatureSet& features = kFeatureSets[state.range(0)];
    const auto& formula = etcsFormula();
    std::uint64_t conflicts = 0;
    for (auto _ : state) {
        sat::Solver solver;
        solver.options().minimizeLearned = features.minimize;
        solver.options().useRestarts = features.restarts;
        solver.options().phaseSaving = features.phaseSaving;
        for (sat::Var v = 0; v < formula.numVariables(); ++v) {
            solver.addVariable();
        }
        for (const auto& clause : formula.clauses()) {
            solver.addClause(clause);
        }
        const auto status = solver.solve();
        benchmark::DoNotOptimize(status);
        conflicts = solver.stats().conflicts;
        if (status != sat::SolveStatus::Unsat) {
            state.SkipWithError("the pure-TTD simple layout must be UNSAT");
        }
    }
    state.SetLabel(features.label);
    state.counters["conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_SolverFeaturesOnEtcs)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_SolverFeaturesOnPigeonhole(benchmark::State& state) {
    const FeatureSet& features = kFeatureSets[state.range(0)];
    constexpr int kPigeons = 8;
    constexpr int kHoles = 7;
    for (auto _ : state) {
        sat::Solver solver;
        solver.options().minimizeLearned = features.minimize;
        solver.options().useRestarts = features.restarts;
        solver.options().phaseSaving = features.phaseSaving;
        std::vector<std::vector<sat::Var>> p(kPigeons, std::vector<sat::Var>(kHoles));
        for (auto& row : p) {
            std::vector<sat::Literal> atLeast;
            for (sat::Var& v : row) {
                v = solver.addVariable();
                atLeast.push_back(sat::Literal::positive(v));
            }
            solver.addClause(atLeast);
        }
        for (int j = 0; j < kHoles; ++j) {
            for (int i = 0; i < kPigeons; ++i) {
                for (int k = i + 1; k < kPigeons; ++k) {
                    solver.addClause({sat::Literal::negative(p[i][j]),
                                      sat::Literal::negative(p[k][j])});
                }
            }
        }
        const auto status = solver.solve();
        benchmark::DoNotOptimize(status);
        if (status != sat::SolveStatus::Unsat) {
            state.SkipWithError("pigeonhole must be UNSAT");
        }
    }
    state.SetLabel(features.label);
}
BENCHMARK(BM_SolverFeaturesOnPigeonhole)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Reachability-cone pruning (DESIGN.md §3): formula size and solve time
/// with and without the cones, on the running example's generation task.
void BM_ConePruning(benchmark::State& state) {
    const bool prune = state.range(0) != 0;
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    core::TaskOptions options;
    options.encoder.pruneWithCones = prune;
    int vars = 0;
    for (auto _ : state) {
        const auto result = core::generateLayout(instance, options);
        benchmark::DoNotOptimize(result.feasible);
        vars = result.stats.numVariables;
        if (!result.feasible) {
            state.SkipWithError("generation unexpectedly infeasible");
        }
    }
    state.SetLabel(prune ? "cones" : "no-cones");
    state.counters["vars"] = vars;
}
BENCHMARK(BM_ConePruning)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Preprocessing the ETCS formula before solving: measure the end-to-end
/// effect (simplification cost + solve on the reduced instance).
void BM_PreprocessThenSolve(benchmark::State& state) {
    const bool usePreprocessor = state.range(0) != 0;
    const auto& collected = etcsFormula();
    std::size_t clausesAfter = 0;
    for (auto _ : state) {
        sat::CnfFormula formula = collected.formula();
        if (usePreprocessor) {
            const auto pre = sat::preprocess(formula);
            if (pre.unsatisfiable) {
                state.SkipWithError("preprocessor must not decide this instance alone");
            }
        }
        clausesAfter = formula.clauses.size();
        sat::Solver solver;
        for (sat::Var v = 0; v < formula.numVariables; ++v) {
            solver.addVariable();
        }
        for (const auto& clause : formula.clauses) {
            solver.addClause(clause);
        }
        const auto status = solver.solve();
        benchmark::DoNotOptimize(status);
        if (status != sat::SolveStatus::Unsat) {
            state.SkipWithError("the pure-TTD simple layout must be UNSAT");
        }
    }
    state.SetLabel(usePreprocessor ? "preprocess+solve" : "solve-only");
    state.counters["clauses"] = static_cast<double>(clausesAfter);
}
BENCHMARK(BM_PreprocessThenSolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
