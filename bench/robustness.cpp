/// \file robustness.cpp
/// Extension tables (ours): operational analyses of the running example's
/// timetable the paper's footnote 4 motivates --
///   (1) delay robustness: which single-train departure delays survive,
///       on the minimal generated layout vs the finest layout;
///   (2) timetable slack: how much each arrival deadline could be
///       tightened before the schedule becomes unrealizable.
#include <iomanip>
#include <iostream>

#include "core/analysis.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

constexpr int kMaxDelay = 4;

void printReport(const char* label, const studies::CaseStudy& study,
                 const core::Instance& instance, const core::RobustnessReport& report) {
    std::cout << label << ":\n" << std::left << std::setw(10) << "train";
    for (int d = 1; d <= kMaxDelay; ++d) {
        std::cout << " +" << d << "step";
    }
    std::cout << "  tolerance\n";
    for (std::size_t r = 0; r < instance.numRuns(); ++r) {
        std::cout << std::left << std::setw(10)
                  << study.trains.train(instance.runs()[r].train).name;
        for (int d = 1; d <= kMaxDelay; ++d) {
            std::cout << "  " << std::setw(5)
                      << (report.feasible[r][static_cast<std::size_t>(d - 1)] ? "ok" : "FAIL");
        }
        std::cout << "  " << report.toleranceSteps[r] << " step(s)\n";
    }
    std::cout << "\n";
}

}  // namespace

int main() {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    std::cout << "DELAY ROBUSTNESS of the Fig. 1b timetable\n"
              << "(single-train departure delays; arrivals shift with the delay)\n\n";

    const auto generation = core::generateLayout(instance);
    if (!generation.feasible) {
        std::cout << "generation failed -- cannot analyse robustness\n";
        return 1;
    }
    const auto onMinimal =
        core::delayRobustness(instance, generation.solution->layout, kMaxDelay);
    printReport("minimal generated layout (5 sections)", study, instance, onMinimal);

    const auto finest = core::VssLayout::finest(instance.graph());
    const auto onFinest = core::delayRobustness(instance, finest, kMaxDelay);
    printReport("finest layout (one VSS per segment)", study, instance, onFinest);

    // (2) Timetable slack on the finest layout.
    const auto slack = core::scheduleSlack(instance, finest);
    std::cout << "TIMETABLE SLACK (finest layout): tightest feasible arrival per train\n"
              << std::left << std::setw(10) << "train" << std::setw(12) << "scheduled"
              << std::setw(12) << "tightest" << "slack\n";
    bool slackOk = true;
    for (std::size_t r = 0; r < instance.numRuns(); ++r) {
        const int scheduled = *instance.runs()[r].destination().arrivalStep;
        std::cout << std::left << std::setw(10)
                  << study.trains.train(instance.runs()[r].train).name << std::setw(12)
                  << study.resolution.timeOf(scheduled).clock() << std::setw(12)
                  << (slack.tightestArrivalStep[r] >= 0
                          ? study.resolution.timeOf(slack.tightestArrivalStep[r]).clock()
                          : std::string("-"))
                  << slack.slackSteps[r] << " step(s)\n";
        slackOk &= slack.tightestArrivalStep[r] >= 0;
    }
    std::cout << "\n";

    // Shape: the finest layout tolerates at least as much delay everywhere.
    bool ok = slackOk;
    for (std::size_t r = 0; r < instance.numRuns(); ++r) {
        ok &= onFinest.toleranceSteps[r] >= onMinimal.toleranceSteps[r];
    }
    std::cout << (ok ? "shape check: OK (finer layouts never less robust)"
                     : "shape check: MISMATCH")
              << "\n";
    return ok ? 0 : 1;
}
