/// \file objectives.cpp
/// Extension table (ours): comparison of the two efficiency objectives the
/// paper discusses in Sec. III-C --
///   (a) minimize the number of steps until ALL trains are done (global),
///   (b) minimize each single train's arrival lexicographically (per-train).
/// Plus the umbrella-header smoke check: this file includes <etcs.hpp> only.
#include <iomanip>
#include <iostream>

#include "etcs.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

bool compareObjectives(const studies::CaseStudy& study) {
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);
    const auto global = core::optimizeSchedule(open);
    const auto perTrain = core::optimizeIndividualArrivals(open);
    if (!global.feasible || !perTrain.feasible) {
        std::cout << study.name << ": infeasible -- shape mismatch\n";
        return false;
    }

    std::cout << study.name << ":\n"
              << std::left << std::setw(12) << "  train" << std::right << std::setw(16)
              << "global-min done" << std::setw(18) << "per-train done" << "\n";
    bool ok = true;
    int globalMax = 0;
    int perTrainMax = 0;
    for (std::size_t r = 0; r < open.numRuns(); ++r) {
        // Under the global objective, a train's done step is implied by the
        // witness (last present step + 1).
        const int globalDone = global.solution->traces[r].lastPresentStep + 1;
        const int lexDone = perTrain.doneSteps[r];
        std::cout << "  " << std::left << std::setw(10)
                  << study.trains.train(open.runs()[r].train).name << std::right
                  << std::setw(16) << globalDone << std::setw(18) << lexDone << "\n";
        globalMax = std::max(globalMax, globalDone);
        perTrainMax = std::max(perTrainMax, lexDone);
    }
    std::cout << "  completion: global objective " << global.completionSteps
              << " steps, per-train objective " << perTrainMax << " steps\n\n";
    // The global objective gives the best possible completion; the
    // lexicographic one may trade overall completion for early leaders.
    ok &= perTrainMax >= global.completionSteps;
    // The first train in priority order gets its individually best arrival:
    // no other strategy can beat it, in particular not the global one.
    ok &= perTrain.doneSteps[0] <= global.solution->traces[0].lastPresentStep + 1;
    return ok;
}

}  // namespace

int main() {
    std::cout << "OBJECTIVE COMPARISON: global completion vs per-train arrivals\n"
              << "(the paper's two 'efficient' interpretations, Sec. III-C)\n\n";
    bool ok = true;
    ok &= compareObjectives(studies::runningExample());
    ok &= compareObjectives(studies::simpleLayout());
    std::cout << (ok ? "shape check: OK (priority train never worse, completion never better)"
                     : "shape check: MISMATCH")
              << "\n";
    return ok ? 0 : 1;
}
