/// \file ablation_encodings.cpp
/// Ablation A1 (our addition, see DESIGN.md): how encoding choices affect
/// the ETCS instances --
///   * at-most-one encodings on the chain-selector groups,
///   * optimization search strategies for the border minimization,
///   * totalizer vs sequential-counter cardinality bounds.
#include <benchmark/benchmark.h>

#include "cnf/cardinality.hpp"
#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

const studies::CaseStudy& running() {
    static const auto study = studies::runningExample();
    return study;
}

const studies::CaseStudy& simple() {
    static const auto study = studies::simpleLayout();
    return study;
}

void BM_GenerationAmoEncoding(benchmark::State& state) {
    const auto& study = running();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    const auto encoding = static_cast<cnf::AmoEncoding>(state.range(0));
    core::TaskOptions options;
    options.encoder.amoEncoding = encoding;
    std::size_t clauses = 0;
    for (auto _ : state) {
        const auto result = core::generateLayout(instance, options);
        benchmark::DoNotOptimize(result.feasible);
        clauses = result.stats.numClauses;
        if (!result.feasible || result.sectionCount != 5) {
            state.SkipWithError("unexpected generation result");
        }
    }
    state.SetLabel(std::string(cnf::toString(encoding)));
    state.counters["clauses"] = static_cast<double>(clauses);
}
BENCHMARK(BM_GenerationAmoEncoding)
    ->Arg(static_cast<int>(cnf::AmoEncoding::Pairwise))
    ->Arg(static_cast<int>(cnf::AmoEncoding::Sequential))
    ->Arg(static_cast<int>(cnf::AmoEncoding::Commander))
    ->Arg(static_cast<int>(cnf::AmoEncoding::Product))
    ->Unit(benchmark::kMillisecond);

void BM_BorderSearchStrategy(benchmark::State& state) {
    const auto& study = simple();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    const auto strategy = static_cast<opt::SearchStrategy>(state.range(0));
    core::TaskOptions options;
    options.borderSearch = strategy;
    std::uint64_t solves = 0;
    for (auto _ : state) {
        const auto result = core::generateLayout(instance, options);
        benchmark::DoNotOptimize(result.sectionCount);
        solves = result.stats.solveCalls;
        if (!result.feasible) {
            state.SkipWithError("generation unexpectedly infeasible");
        }
    }
    state.SetLabel(std::string(opt::toString(strategy)));
    state.counters["solves"] = static_cast<double>(solves);
}
BENCHMARK(BM_BorderSearchStrategy)
    ->Arg(static_cast<int>(opt::SearchStrategy::LinearDown))
    ->Arg(static_cast<int>(opt::SearchStrategy::LinearUp))
    ->Arg(static_cast<int>(opt::SearchStrategy::Binary))
    ->Unit(benchmark::kMillisecond);

void BM_TimeSearchStrategy(benchmark::State& state) {
    const auto& study = running();
    const core::Instance instance(study.network, study.trains, study.openSchedule,
                                  study.resolution);
    const auto strategy = static_cast<opt::SearchStrategy>(state.range(0));
    core::TaskOptions options;
    options.timeSearch = strategy;
    for (auto _ : state) {
        const auto result = core::optimizeSchedule(instance, options);
        benchmark::DoNotOptimize(result.completionSteps);
        if (!result.feasible) {
            state.SkipWithError("optimization unexpectedly infeasible");
        }
    }
    state.SetLabel(std::string(opt::toString(strategy)));
}
BENCHMARK(BM_TimeSearchStrategy)
    ->Arg(static_cast<int>(opt::SearchStrategy::LinearDown))
    ->Arg(static_cast<int>(opt::SearchStrategy::LinearUp))
    ->Arg(static_cast<int>(opt::SearchStrategy::Binary))
    ->Unit(benchmark::kMillisecond);

/// Totalizer (reusable, assumption-driven) vs sequential counter (one-shot):
/// enforce "at most k of 40" and solve once.
void BM_CardinalityEncoding(benchmark::State& state) {
    const bool useTotalizer = state.range(0) == 0;
    for (auto _ : state) {
        const auto backend = cnf::makeInternalBackend();
        std::vector<cnf::Literal> inputs;
        for (int i = 0; i < 40; ++i) {
            inputs.push_back(cnf::Literal::positive(backend->addVariable()));
        }
        // Demands that force at least 10 true inputs.
        for (int i = 0; i < 10; ++i) {
            backend->addClause({inputs[4 * i], inputs[4 * i + 1]});
        }
        if (useTotalizer) {
            const cnf::Totalizer totalizer(*backend, inputs);
            totalizer.addAtMost(*backend, 10);
        } else {
            cnf::addAtMostK(*backend, inputs, 10);
        }
        const auto status = backend->solve();
        benchmark::DoNotOptimize(status);
        if (status != cnf::SolveStatus::Sat) {
            state.SkipWithError("bound of 10 must be satisfiable");
        }
    }
    state.SetLabel(useTotalizer ? "totalizer" : "sequential-counter");
}
BENCHMARK(BM_CardinalityEncoding)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
