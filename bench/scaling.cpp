/// \file scaling.cpp
/// Scaling study S1 (our addition, see DESIGN.md): how instance size and
/// runtime grow with
///   * corridor length (number of stations),
///   * train count,
///   * spatial/temporal resolution on the running example.
/// Printed as tables in the spirit of Table I.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "cnf/backend.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "obs/metrics.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

/// Mirror one scaling data point into the metrics registry under
/// scaling.<series>.<point>.<field> so the final registry dump doubles as a
/// machine-readable result file.
void recordPoint(const std::string& series, const std::string& point,
                 const core::Instance& instance, const core::GenerationResult& result) {
    auto& registry = obs::Registry::global();
    const std::string prefix = "scaling." + series + "." + point + ".";
    registry.gauge(prefix + "segments")
        .set(static_cast<double>(instance.graph().numSegments()));
    registry.gauge(prefix + "steps").set(instance.horizonSteps());
    registry.gauge(prefix + "variables").set(result.stats.numVariables);
    registry.gauge(prefix + "clauses").set(static_cast<double>(result.stats.numClauses));
    registry.gauge(prefix + "sat").set(result.feasible ? 1 : 0);
    registry.gauge(prefix + "runtime_seconds").set(result.stats.runtimeSeconds);
    registry.gauge(prefix + "conflicts").set(static_cast<double>(result.stats.conflicts));
    registry.gauge(prefix + "propagations")
        .set(static_cast<double>(result.stats.propagations));
}

void corridorScaling() {
    std::cout << "S1a: corridor length scaling (3 trains, 2 km spacing, r_s = 0.5 km, "
                 "r_t = 1 min; generation task)\n\n"
              << std::right << std::setw(9) << "stations" << std::setw(10) << "segments"
              << std::setw(8) << "steps" << std::setw(9) << "vars" << std::setw(10)
              << "clauses" << std::setw(6) << "sat" << std::setw(12) << "runtime[s]"
              << "\n";
    for (int stations = 2; stations <= 6; ++stations) {
        const auto study = studies::corridor(stations, 3, Meters::fromKilometers(2.0),
                                             Resolution{Meters(500), Seconds(60)});
        const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                      study.resolution);
        const auto result = core::generateLayout(instance);
        recordPoint("corridor", "stations_" + std::to_string(stations), instance, result);
        std::cout << std::setw(9) << stations << std::setw(10)
                  << instance.graph().numSegments() << std::setw(8)
                  << instance.horizonSteps() << std::setw(9) << result.stats.numVariables
                  << std::setw(10) << result.stats.numClauses << std::setw(6)
                  << (result.feasible ? "yes" : "no") << std::setw(12) << std::fixed
                  << std::setprecision(3) << result.stats.runtimeSeconds << "\n";
    }
    std::cout << "\n";
}

void trainScaling() {
    std::cout << "S1b: train count scaling (4 stations; generation task)\n\n"
              << std::right << std::setw(7) << "trains" << std::setw(9) << "vars"
              << std::setw(10) << "clauses" << std::setw(6) << "sat" << std::setw(12)
              << "runtime[s]" << "\n";
    for (int trains = 1; trains <= 6; ++trains) {
        const auto study = studies::corridor(4, trains, Meters::fromKilometers(2.0),
                                             Resolution{Meters(500), Seconds(60)});
        const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                      study.resolution);
        const auto result = core::generateLayout(instance);
        recordPoint("trains", "trains_" + std::to_string(trains), instance, result);
        std::cout << std::setw(7) << trains << std::setw(9) << result.stats.numVariables
                  << std::setw(10) << result.stats.numClauses << std::setw(6)
                  << (result.feasible ? "yes" : "no") << std::setw(12) << std::fixed
                  << std::setprecision(3) << result.stats.runtimeSeconds << "\n";
    }
    std::cout << "\n";
}

void resolutionScaling() {
    std::cout << "S1c: resolution scaling on the running example (generation task)\n"
              << "     (coarse grids can lose feasibility -- discretization artifact;\n"
              << "      refining the grid keeps the schedule realizable)\n\n"
              << std::right << std::setw(10) << "r_s[km]" << std::setw(10) << "r_t[min]"
              << std::setw(10) << "segments" << std::setw(8) << "steps" << std::setw(9)
              << "vars" << std::setw(6) << "sat" << std::setw(12) << "runtime[s]" << "\n";
    const auto base = studies::runningExample();
    const struct {
        double rsKm;
        double rtMin;
    } grid[] = {{1.0, 1.0}, {0.5, 0.5}, {0.25, 0.25}};
    for (const auto& g : grid) {
        const Resolution resolution{Meters::fromKilometers(g.rsKm),
                                    Seconds::fromMinutes(g.rtMin)};
        const core::Instance instance(base.network, base.trains, base.timedSchedule,
                                      resolution);
        const auto result = core::generateLayout(instance);
        recordPoint("resolution",
                    "rs_" + std::to_string(static_cast<int>(g.rsKm * 1000)) + "m_rt_" +
                        std::to_string(static_cast<int>(g.rtMin * 60)) + "s",
                    instance, result);
        std::cout << std::setw(10) << g.rsKm << std::setw(10) << g.rtMin << std::setw(10)
                  << instance.graph().numSegments() << std::setw(8)
                  << instance.horizonSteps() << std::setw(9) << result.stats.numVariables
                  << std::setw(6) << (result.feasible ? "yes" : "no") << std::setw(12)
                  << std::fixed << std::setprecision(3) << result.stats.runtimeSeconds
                  << "\n";
    }
    std::cout << "\n";
}

void portfolioScaling() {
    std::cout << "S1d: portfolio thread scaling (generation task, racing mode;\n"
                 "     speedup = runtime(threads=1) / runtime(threads=N))\n\n"
              << std::right << std::setw(24) << "instance" << std::setw(9) << "threads"
              << std::setw(6) << "sat" << std::setw(12) << "runtime[s]" << std::setw(9)
              << "speedup" << "\n";
    // The portfolio pays off on instances that make the default configuration
    // struggle (dense traffic, long blocks): there a diversified worker or the
    // shared short clauses crack the instance first. Easy instances (the s4_t6
    // row) show the time-slicing tax instead — see docs/PARALLEL.md.
    const struct {
        const char* name;
        int stations;
        int trains;
        double spacingKm;
    } instances[] = {{"corridor_s4_t6", 4, 6, 2.0},
                     {"corridor_s3_t6_sp25", 3, 6, 2.5},
                     {"corridor_s2_t7", 2, 7, 2.0}};
    auto& registry = obs::Registry::global();
    for (const auto& spec : instances) {
        const auto study = studies::corridor(spec.stations, spec.trains,
                                             Meters::fromKilometers(spec.spacingKm),
                                             Resolution{Meters(500), Seconds(60)});
        const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                      study.resolution);
        double baseline = 0.0;
        for (const int threads : {1, 2, 4}) {
            core::TaskOptions options;
            options.threads = threads;
            const auto result = core::generateLayout(instance, options);
            const std::string point =
                std::string(spec.name) + ".threads_" + std::to_string(threads);
            recordPoint("portfolio", point, instance, result);
            if (threads == 1) {
                baseline = result.stats.runtimeSeconds;
            }
            const double speedup = result.stats.runtimeSeconds > 0.0
                                       ? baseline / result.stats.runtimeSeconds
                                       : 0.0;
            registry.gauge("scaling.portfolio." + point + ".speedup").set(speedup);
            std::cout << std::setw(24) << spec.name << std::setw(9) << threads
                      << std::setw(6) << (result.feasible ? "yes" : "no") << std::setw(12)
                      << std::fixed << std::setprecision(3) << result.stats.runtimeSeconds
                      << std::setw(9) << std::setprecision(2) << speedup << "\n";
        }
    }
    std::cout << "\n";
}

/// Encode `instance` once (no solving) and return its per-family counts.
std::vector<core::FamilyCounts> encodeOnly(const core::Instance& instance,
                                           bool pruneUnreachable) {
    const auto backend = cnf::makeInternalBackend();
    core::EncoderOptions options;
    options.pruneUnreachable = pruneUnreachable;
    core::Encoder encoder(*backend, instance, options);
    encoder.encode(nullptr);
    return {encoder.familyCounts().begin(), encoder.familyCounts().end()};
}

void pruningScaling() {
    std::cout << "S1e: reachability pruning effectiveness (encode-only, per constraint\n"
                 "     family, full vs. EncoderOptions::pruneUnreachable;\n"
                 "     see docs/REACHABILITY.md)\n\n";
    const struct {
        const char* name;
        studies::CaseStudy study;
    } cases[] = {{"running_example", studies::runningExample()},
                 {"corridor_s4_t3", studies::corridor(4, 3, Meters::fromKilometers(2.0),
                                                      Resolution{Meters(500), Seconds(60)})},
                 {"nordlandsbanen", studies::nordlandsbanen()}};
    auto& registry = obs::Registry::global();
    for (const auto& c : cases) {
        const core::Instance instance(c.study.network, c.study.trains, c.study.timedSchedule,
                                      c.study.resolution);
        const auto full = encodeOnly(instance, false);
        const auto pruned = encodeOnly(instance, true);
        std::cout << c.name << " (" << instance.graph().numSegments() << " segments, "
                  << instance.horizonSteps() << " steps)\n"
                  << std::right << std::setw(20) << "family" << std::setw(12) << "vars full"
                  << std::setw(12) << "vars prune" << std::setw(13) << "clauses full"
                  << std::setw(14) << "clauses prune" << std::setw(9) << "drop[%]" << "\n";
        for (const core::FamilyCounts& before : full) {
            const auto it = std::find_if(pruned.begin(), pruned.end(),
                                         [&](const core::FamilyCounts& after) {
                                             return after.family == before.family;
                                         });
            const core::FamilyCounts after =
                it != pruned.end() ? *it : core::FamilyCounts{before.family, 0, 0};
            const double drop =
                before.clauses > 0
                    ? 100.0 * (1.0 - static_cast<double>(after.clauses) /
                                         static_cast<double>(before.clauses))
                    : 0.0;
            const std::string family(before.family);
            const std::string prefix = "scaling.pruning." + std::string(c.name) + "." + family;
            registry.gauge(prefix + ".variables_full").set(before.variables);
            registry.gauge(prefix + ".variables_pruned").set(after.variables);
            registry.gauge(prefix + ".clauses_full").set(static_cast<double>(before.clauses));
            registry.gauge(prefix + ".clauses_pruned").set(static_cast<double>(after.clauses));
            std::cout << std::setw(20) << family << std::setw(12) << before.variables
                      << std::setw(12) << after.variables << std::setw(13) << before.clauses
                      << std::setw(14) << after.clauses << std::setw(9) << std::fixed
                      << std::setprecision(1) << drop << "\n";
        }
        std::cout << "\n";
    }
}

}  // namespace

int main(int argc, char** argv) {
    // With arguments, run only the named series (corridor, trains,
    // resolution, portfolio, pruning) — used by CI to smoke single series.
    const auto selected = [&](const char* series) {
        if (argc <= 1) {
            return true;
        }
        for (int i = 1; i < argc; ++i) {
            if (series == std::string(argv[i])) {
                return true;
            }
        }
        return false;
    };
    std::cout << "SCALING STUDY (extension to the paper's evaluation)\n\n";
    if (selected("corridor")) {
        corridorScaling();
    }
    if (selected("trains")) {
        trainScaling();
    }
    if (selected("resolution")) {
        resolutionScaling();
    }
    if (selected("portfolio")) {
        portfolioScaling();
    }
    if (selected("pruning")) {
        pruningScaling();
    }
    const char* metricsFile = "BENCH_scaling.json";
    if (obs::Registry::global().writeJsonFile(metricsFile)) {
        std::cout << "metrics written to " << metricsFile << "\n";
    }
    return 0;
}
