/// \file fig3_symbolic_formulation.cpp
/// Regenerates Fig. 3 of the paper: the symbolic formulation of the running
/// example at r_s = 0.5 km -- the segment graph G=(V,E) with its border_v
/// candidates, plus the full variable inventory (border / occupies / done /
/// auxiliary) of the resulting satisfiability instance.
#include <iostream>

#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "studies/studies.hpp"

using namespace etcs;

int main() {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    const auto& graph = instance.graph();

    std::cout << "FIG. 3: Symbolic formulation of the running example\n"
              << "(r_s = " << study.resolution.spatial.kilometers()
              << " km, r_t = " << study.resolution.temporal.minutes() << " min)\n\n";

    std::cout << "Graph G = (V, E): " << graph.numNodes() << " nodes, "
              << graph.numSegments() << " edges\n\n";
    std::cout << "edges (e_i, the paper's track segments):\n";
    for (std::size_t s = 0; s < graph.numSegments(); ++s) {
        const auto& segment = graph.segment(SegmentId(s));
        std::cout << "  e" << s + 1 << " = " << graph.segmentLabel(SegmentId(s)) << "  (v"
                  << segment.a.get() + 1 << " -- v" << segment.b.get() + 1 << ", "
                  << study.network.ttd(segment.ttd).name << ")\n";
    }
    std::cout << "\nnodes (v_i, candidate VSS borders; * = fixed border with axle counter):\n";
    int candidates = 0;
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        const auto& node = graph.node(SegNodeId(n));
        std::cout << "  v" << n + 1;
        if (node.source.valid()) {
            std::cout << " (" << study.network.node(node.source).name << ")";
        }
        if (node.fixedBorder) {
            std::cout << " *";
        } else {
            std::cout << "  -> border_v" << n + 1;
            ++candidates;
        }
        std::cout << "\n";
    }

    // Build the actual instance and report the variable inventory.
    const auto backend = cnf::makeInternalBackend();
    core::Encoder encoder(*backend, instance);
    encoder.encode(nullptr);
    int occupies = 0;
    int done = 0;
    for (std::size_t r = 0; r < instance.numRuns(); ++r) {
        for (int t = 0; t < instance.horizonSteps(); ++t) {
            for (std::size_t s = 0; s < graph.numSegments(); ++s) {
                occupies += encoder.occupiesLiteral(r, SegmentId(s), t).valid() ? 1 : 0;
            }
            done += encoder.doneLiteral(r, t).valid() ? 1 : 0;
        }
    }
    const int total = backend->numVariables();
    std::cout << "\nVariable inventory of the free-layout instance:\n"
              << "  border_v      : " << candidates << "\n"
              << "  occupies      : " << occupies << "   (trains x segments x steps, "
              << "cone-pruned)\n"
              << "  done          : " << done << "\n"
              << "  auxiliary     : " << total - candidates - occupies - done
              << "   (chain selectors, AMO/sweep variables)\n"
              << "  total         : " << total << "   (clauses: " << backend->numClauses()
              << ")\n";

    const bool ok = graph.numNodes() == 11 && graph.numSegments() == 11 && candidates == 7;
    std::cout << (ok ? "shape check: OK (11 nodes, 11 edges, 7 candidate borders as in Fig. 3)"
                     : "shape check: MISMATCH")
              << "\n";
    return ok ? 0 : 1;
}
