/// \file fig2_optimized_schedule.cpp
/// Regenerates Fig. 2 of the paper: the improved VSS layout and schedule for
/// the running example. Departures are kept, arrivals are released, and the
/// solver minimizes completion time (then the number of sections).
#include <iomanip>
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "core/validator.hpp"
#include "studies/studies.hpp"

using namespace etcs;

int main() {
    const auto study = studies::runningExample();
    const core::Instance timed(study.network, study.trains, study.timedSchedule,
                               study.resolution);
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);

    const auto optimized = core::optimizeSchedule(open);
    if (!optimized.feasible) {
        std::cout << "optimization infeasible -- shape mismatch\n";
        return 1;
    }
    const auto& graph = open.graph();

    std::cout << "FIG. 2a: Improved VSS layout (" << optimized.sectionCount
              << " TTD/VSS sections, "
              << optimized.solution->layout.virtualBorderCount(graph)
              << " virtual borders)\n";
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (!graph.node(SegNodeId(n)).fixedBorder && optimized.solution->layout.flags()[n]) {
            std::cout << "  virtual border between";
            for (SegmentId s : graph.segmentsAt(SegNodeId(n))) {
                std::cout << " " << graph.segmentLabel(s);
            }
            std::cout << "\n";
        }
    }

    std::cout << "\nFIG. 2b: Improved schedule\n\n"
              << std::left << std::setw(8) << "Train" << std::setw(7) << "Start"
              << std::setw(6) << "Goal" << std::setw(14) << "Speed[km/h]" << std::setw(11)
              << "Length[m]" << std::setw(11) << "Departure" << std::setw(12) << "Arrival"
              << "Original\n";
    bool allImproved = true;
    for (std::size_t r = 0; r < open.numRuns(); ++r) {
        const auto& run = open.runs()[r];
        const auto& train = study.trains.train(run.train);
        const int arrivalStep = optimized.solution->traces[r].firstArrivalStep;
        const int originalStep = *timed.runs()[r].destination().arrivalStep;
        allImproved &= arrivalStep <= originalStep;
        std::cout << std::left << std::setw(8) << train.name << std::setw(7)
                  << study.network.station(study.openSchedule.runs()[r].origin).name
                  << std::setw(6)
                  << study.network
                         .station(study.openSchedule.runs()[r].stops.back().station)
                         .name
                  << std::setw(14) << train.maxSpeed.kmPerHour() << std::setw(11)
                  << train.length.count() << std::setw(11)
                  << study.resolution.timeOf(run.departureStep).clock() << std::setw(12)
                  << study.resolution.timeOf(arrivalStep).clock()
                  << study.resolution.timeOf(originalStep).clock() << "\n";
    }

    std::cout << "\ncompletion: " << optimized.completionSteps << " time steps vs "
              << timed.horizonSteps() << " for the Fig. 1b schedule\n";
    const auto violations = core::validateSolution(open, *optimized.solution);
    const bool ok = allImproved && optimized.completionSteps < timed.horizonSteps() &&
                    violations.empty();
    std::cout << (ok ? "shape check: OK (every train at least as early, fewer steps overall)"
                     : "shape check: MISMATCH")
              << "\n";
    return ok ? 0 : 1;
}
