/// \file fig1_running_example.cpp
/// Regenerates Fig. 1 of the paper: the running-example railway network with
/// its TTD sections, the schedule table (Fig. 1b), and Example 2's findings:
/// the schedule deadlocks on the pure TTD layout but works once the side
/// track through station C is split by a virtual border.
#include <iomanip>
#include <iostream>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "studies/studies.hpp"

using namespace etcs;

int main() {
    const auto study = studies::runningExample();
    const core::Instance instance(study.network, study.trains, study.timedSchedule,
                                  study.resolution);
    const auto& graph = instance.graph();

    std::cout << "FIG. 1a: Example railway network (TTD sections)\n\n"
              << "    A ===TTD1(entry)=== S1 ===TTD2(main)=== S2 ===TTD4(exit)=== B\n"
              << "                          \\==TTD3(side, station C)==/\n\n";
    for (const auto& ttd : study.network.ttds()) {
        std::cout << "  " << ttd.name << ":";
        for (TrackId t : ttd.tracks) {
            const auto& track = study.network.track(t);
            std::cout << " " << track.name << " (" << track.length.kilometers() << " km, "
                      << instance.resolution().segmentsOf(track.length) << " segments)";
        }
        std::cout << "\n";
    }

    std::cout << "\nFIG. 1b: Example schedule\n\n"
              << std::left << std::setw(8) << "Train" << std::setw(7) << "Start"
              << std::setw(6) << "Goal" << std::setw(14) << "Speed[km/h]" << std::setw(11)
              << "Length[m]" << std::setw(11) << "Departure" << "Arrival\n";
    for (const auto& run : study.timedSchedule.runs()) {
        const auto& train = study.trains.train(run.train);
        std::cout << std::left << std::setw(8) << train.name << std::setw(7)
                  << study.network.station(run.origin).name << std::setw(6)
                  << study.network.station(run.stops.back().station).name << std::setw(14)
                  << train.maxSpeed.kmPerHour() << std::setw(11) << train.length.count()
                  << std::setw(11) << run.departure.clock()
                  << run.stops.back().arrival->clock() << "\n";
    }

    // Example 2, part 1: the pure TTD layout deadlocks.
    const core::VssLayout pure(graph);
    const auto onPure = core::verifySchedule(instance, pure);
    std::cout << "\nschedule on the pure TTD layout (" << pure.sectionCount(graph)
              << " sections): " << (onPure.feasible ? "FEASIBLE" : "INFEASIBLE")
              << "   (paper: infeasible -- all four TTDs blocked after departure)\n";

    // Example 2, part 2: an enriched VSS layout makes it work. We let the
    // generator find the minimal one and show it also passes verification.
    const auto generated = core::generateLayout(instance);
    if (!generated.feasible) {
        std::cout << "generation failed -- shape mismatch\n";
        return 1;
    }
    std::cout << "with " << generated.sectionCount << " TTD/VSS sections ("
              << generated.solution->layout.virtualBorderCount(graph)
              << " virtual border(s)) the schedule works\n";
    for (std::size_t n = 0; n < graph.numNodes(); ++n) {
        if (!graph.node(SegNodeId(n)).fixedBorder &&
            generated.solution->layout.flags()[n]) {
            std::cout << "  virtual border between";
            for (SegmentId s : graph.segmentsAt(SegNodeId(n))) {
                std::cout << " " << graph.segmentLabel(s);
            }
            std::cout << "\n";
        }
    }
    const auto verified = core::verifySchedule(instance, generated.solution->layout);
    std::cout << "re-verification on the generated layout: "
              << (verified.feasible ? "FEASIBLE" : "INFEASIBLE") << "\n";

    const bool ok = !onPure.feasible && generated.feasible && verified.feasible;
    std::cout << (ok ? "shape check: OK" : "shape check: MISMATCH") << "\n";
    return ok ? 0 : 1;
}
