/// \file table1.cpp
/// Regenerates the paper's Table I: for each of the four case studies, run
/// the three design tasks (verification on the pure TTD layout, VSS layout
/// generation, schedule optimization) and report variables, satisfiability,
/// TTD/VSS section count, time steps, and runtime.
///
/// Expected shape (absolute numbers differ from the paper because the exact
/// network geometry is unpublished; see EXPERIMENTS.md):
///   * every verification row is UNSAT,
///   * every generation row is SAT with a few extra sections,
///   * every optimization row is SAT with fewer time steps.
/// The binary self-checks these verdicts and exits nonzero on mismatch.
#include <cctype>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/instance.hpp"
#include "core/tasks.hpp"
#include "obs/metrics.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

struct Row {
    std::string task;
    int vars = 0;
    bool sat = false;
    int sections = 0;
    int timeSteps = -1;  // -1: not applicable (verification UNSAT)
    double runtime = 0.0;
    core::TaskStats stats;
};

std::string slug(std::string_view text) {
    std::string out;
    for (char c : text) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                          : '_');
    }
    return out;
}

/// Mirror one result row into the metrics registry under
/// table1.<study>.<task>.<field>, so the registry dump is the machine-
/// readable twin of the printed table.
void recordRow(const std::string& study, const Row& row) {
    auto& registry = obs::Registry::global();
    const std::string prefix = "table1." + study + "." + slug(row.task) + ".";
    registry.gauge(prefix + "variables").set(row.vars);
    registry.gauge(prefix + "clauses").set(static_cast<double>(row.stats.numClauses));
    registry.gauge(prefix + "sat").set(row.sat ? 1 : 0);
    registry.gauge(prefix + "sections").set(row.sections);
    registry.gauge(prefix + "time_steps").set(row.timeSteps);
    registry.gauge(prefix + "runtime_seconds").set(row.runtime);
    registry.gauge(prefix + "solve_calls").set(static_cast<double>(row.stats.solveCalls));
    registry.gauge(prefix + "conflicts").set(static_cast<double>(row.stats.conflicts));
    registry.gauge(prefix + "propagations")
        .set(static_cast<double>(row.stats.propagations));
    registry.gauge(prefix + "restarts").set(static_cast<double>(row.stats.restarts));
    registry.gauge(prefix + "max_decision_level")
        .set(static_cast<double>(row.stats.maxDecisionLevel));
}

void printHeader(const studies::CaseStudy& study) {
    std::ostringstream title;
    title << study.name << " (r_t = " << study.resolution.temporal.minutes()
          << " min, r_s = " << study.resolution.spatial.kilometers() << " km)";
    std::cout << "| " << std::left << std::setw(61) << title.str() << "|\n";
}

void printRow(const Row& row) {
    std::cout << "| " << std::left << std::setw(14) << row.task << std::right << std::setw(7)
              << row.vars << "  " << std::setw(4) << (row.sat ? "Yes" : "No") << "  "
              << std::setw(8) << row.sections << "  ";
    if (row.timeSteps >= 0) {
        std::cout << std::setw(10) << row.timeSteps;
    } else {
        std::cout << std::setw(10) << "-";
    }
    std::cout << "  " << std::setw(11) << std::fixed << std::setprecision(2) << row.runtime
              << " |\n";
}

/// Run the three tasks for one case study; returns false on a shape mismatch.
bool runStudy(const studies::CaseStudy& study) {
    const core::Instance timed(study.network, study.trains, study.timedSchedule,
                               study.resolution);
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);
    bool shapeOk = true;
    std::vector<Row> rows;

    // Verification on the pure TTD layout.
    const core::VssLayout pure(timed.graph());
    const auto verification = core::verifySchedule(timed, pure);
    rows.push_back(Row{"Verification", verification.stats.numVariables, verification.feasible,
                       pure.sectionCount(timed.graph()), -1,
                       verification.stats.runtimeSeconds, verification.stats});
    shapeOk &= !verification.feasible;  // paper: all verification rows UNSAT

    // Generation.
    const auto generation = core::generateLayout(timed);
    rows.push_back(Row{"Generation", generation.stats.numVariables, generation.feasible,
                       generation.sectionCount,
                       generation.feasible ? generation.solution->completionSteps : -1,
                       generation.stats.runtimeSeconds, generation.stats});
    shapeOk &= generation.feasible;

    // Optimization.
    const auto optimization = core::optimizeSchedule(open);
    rows.push_back(Row{"Optimization", optimization.stats.numVariables, optimization.feasible,
                       optimization.sectionCount,
                       optimization.feasible ? optimization.completionSteps : -1,
                       optimization.stats.runtimeSeconds, optimization.stats});
    shapeOk &= optimization.feasible;
    if (generation.feasible && optimization.feasible) {
        shapeOk &= optimization.completionSteps <= generation.solution->completionSteps;
    }

    printHeader(study);
    for (const Row& row : rows) {
        printRow(row);
        recordRow(slug(study.name), row);
    }
    return shapeOk;
}

}  // namespace

int main() {
    std::cout << "TABLE I: Obtained results (reproduction)\n"
              << "+" << std::string(62, '-') << "+\n"
              << "| " << std::left << std::setw(14) << "Task" << std::right << std::setw(7)
              << "Var." << "  " << std::setw(4) << "Sat" << "  " << std::setw(8) << "TTD/VSS"
              << "  " << std::setw(10) << "Time Steps" << "  " << std::setw(11)
              << "Runtime [s]" << " |\n"
              << "+" << std::string(62, '-') << "+\n";
    bool allOk = true;
    allOk &= runStudy(studies::runningExample());
    std::cout << "+" << std::string(62, '-') << "+\n";
    allOk &= runStudy(studies::simpleLayout());
    std::cout << "+" << std::string(62, '-') << "+\n";
    allOk &= runStudy(studies::complexLayout());
    std::cout << "+" << std::string(62, '-') << "+\n";
    allOk &= runStudy(studies::nordlandsbanen());
    std::cout << "+" << std::string(62, '-') << "+\n";
    std::cout << (allOk ? "shape check: OK (verification UNSAT, generation/optimization SAT)"
                        : "shape check: MISMATCH against the paper's Table I")
              << "\n";
    const char* metricsFile = "BENCH_table1.json";
    if (obs::Registry::global().writeJsonFile(metricsFile)) {
        std::cout << "metrics written to " << metricsFile << "\n";
    }
    return allOk ? 0 : 1;
}
