/// \file tradeoff_curve.cpp
/// Extension figure (ours): the borders-vs-completion trade-off curve --
/// for every budget of k virtual borders, the fastest schedule any layout
/// within budget allows. This quantifies, border by border, the potential
/// that ETCS Level 3 unlocks (the paper's central motivation).
#include <iomanip>
#include <iostream>

#include "core/analysis.hpp"
#include "studies/studies.hpp"

using namespace etcs;

namespace {

bool printCurve(const studies::CaseStudy& study, int maxBudget) {
    const core::Instance open(study.network, study.trains, study.openSchedule,
                              study.resolution);
    std::cout << study.name << " (horizon " << open.horizonSteps() << " steps):\n\n"
              << std::right << std::setw(14) << "extra borders" << std::setw(10) << "feasible"
              << std::setw(12) << "completion" << std::setw(10) << "sections" << "\n";
    const auto curve = core::tradeoffCurve(open, maxBudget);
    bool monotone = true;
    int previous = -1;
    for (const auto& point : curve) {
        std::cout << std::setw(14) << point.extraBorders << std::setw(10)
                  << (point.feasible ? "yes" : "no");
        if (point.feasible) {
            std::cout << std::setw(12) << point.completionSteps << std::setw(10)
                      << point.sectionCount;
            if (previous >= 0 && point.completionSteps > previous) {
                monotone = false;
            }
            previous = point.completionSteps;
        } else {
            std::cout << std::setw(12) << "-" << std::setw(10) << "-";
        }
        std::cout << "\n";
    }
    std::cout << "\n";
    return monotone && !curve.empty() && curve.back().feasible;
}

}  // namespace

int main() {
    std::cout << "TRADE-OFF CURVES: what each additional virtual border buys\n\n";
    bool ok = true;
    ok &= printCurve(studies::runningExample(), 7);
    ok &= printCurve(studies::simpleLayout(), 6);
    std::cout << (ok ? "shape check: OK (curves non-increasing, final budget feasible)"
                     : "shape check: MISMATCH")
              << "\n";
    return ok ? 0 : 1;
}
