/// \file suite.cpp
/// Reproducible benchmark suite over the generated corpus (our addition,
/// see docs/GENERATOR.md): every topology family x schedule kind at a fixed
/// seed, verified on the finest layout with every available SAT backend.
///
/// The run doubles as a cross-backend differential check: all backends must
/// agree on every verdict, feasible-by-construction instances must be SAT,
/// and lint-provably-infeasible instances must be UNSAT. Metrics land in
/// BENCH_suite.json under suite.<instance>.<backend>.<field>; the counter
/// metrics (variables, clauses, conflicts, propagations, decisions) are
/// deterministic between identical runs, so `benchdiff --threshold 0` over
/// two runs is a determinism gate (CI perf-smoke does exactly that).
///
/// Exit code: 0 = all checks passed, 1 = verdict mismatch or wrong verdict.
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cnf/backend.hpp"
#include "core/encoder.hpp"
#include "core/instance.hpp"
#include "core/layout.hpp"
#include "core/tasks.hpp"
#include "gen/generator.hpp"
#include "obs/metrics.hpp"

using namespace etcs;

namespace {

/// One fixed corpus entry. The seed is frozen: regenerating with the same
/// etcsgen parameters reproduces the instance byte for byte.
constexpr std::uint64_t kSuiteSeed = 9;
constexpr int kSuiteSize = 3;
constexpr int kSuiteTrains = 2;

struct BackendSpec {
    const char* name;
    core::TaskOptions options;
};

std::vector<BackendSpec> backends() {
    std::vector<BackendSpec> specs;
    {
        BackendSpec internal;
        internal.name = "internal";
        internal.options.threads = 1;
        specs.push_back(internal);
    }
    {
        BackendSpec portfolio;
        portfolio.name = "portfolio2";
        portfolio.options.threads = 2;
        portfolio.options.deterministicPortfolio = true;
        specs.push_back(portfolio);
    }
#ifdef ETCS_HAVE_Z3
    {
        BackendSpec z3;
        z3.name = "z3";
        z3.options.backendFactory = [] { return cnf::makeZ3Backend(); };
        specs.push_back(z3);
    }
#endif
    // The suite benchmarks the solvers, so even provably-infeasible
    // instances are handed to the backend instead of short-circuiting in
    // the linter.
    for (BackendSpec& spec : specs) {
        spec.options.lintInstance = false;
    }
    return specs;
}

void recordResult(const std::string& instanceName, const std::string& backendName,
                  const core::VerificationResult& result) {
    auto& registry = obs::Registry::global();
    const std::string prefix = "suite." + instanceName + "." + backendName + ".";
    // Named "verdict_sat" rather than "feasible" so benchdiff patterns can
    // target it without also substring-matching the instance names (which
    // end in _feasible/_infeasible).
    registry.gauge(prefix + "verdict_sat").set(result.feasible ? 1 : 0);
    registry.gauge(prefix + "variables").set(result.stats.numVariables);
    registry.gauge(prefix + "clauses").set(static_cast<double>(result.stats.numClauses));
    registry.gauge(prefix + "conflicts").set(static_cast<double>(result.stats.conflicts));
    registry.gauge(prefix + "propagations")
        .set(static_cast<double>(result.stats.propagations));
    registry.gauge(prefix + "decisions").set(static_cast<double>(result.stats.decisions));
    registry.gauge(prefix + "runtime_seconds").set(result.stats.runtimeSeconds);
}

/// Encode the instance twice (reachability pruning off/on, no solving) and
/// record the before/after formula size under suite.<instance>.pruning.*.
/// The gauges are deterministic, so the benchdiff threshold-0 determinism
/// gate guards the pruning effectiveness against silent regression.
void recordPruning(const std::string& instanceName, const core::Instance& instance) {
    auto& registry = obs::Registry::global();
    const std::string prefix = "suite." + instanceName + ".pruning.";
    for (const bool prune : {false, true}) {
        const auto backend = cnf::makeInternalBackend();
        core::EncoderOptions options;
        options.pruneUnreachable = prune;
        core::Encoder encoder(*backend, instance, options);
        encoder.encode(nullptr);
        const char* suffix = prune ? "_pruned" : "_full";
        registry.gauge(prefix + "variables" + suffix).set(backend->numVariables());
        registry.gauge(prefix + "clauses" + suffix)
            .set(static_cast<double>(backend->numClauses()));
    }
}

}  // namespace

int main() {
    std::cout << "BENCHMARK SUITE over the generated corpus (seed " << kSuiteSeed
              << ", size " << kSuiteSize << ", " << kSuiteTrains
              << " trains; verification on the finest layout)\n\n"
              << std::right << std::setw(34) << "instance" << std::setw(12) << "backend"
              << std::setw(12) << "verdict" << std::setw(8) << "vars" << std::setw(9)
              << "clauses" << std::setw(10) << "conflicts" << std::setw(12)
              << "runtime[s]" << "\n";

    const auto specs = backends();
    int failures = 0;
    for (gen::Family family : gen::allFamilies()) {
        for (gen::ScheduleKind kind : gen::allScheduleKinds()) {
            gen::GenParams params;
            params.family = family;
            params.schedule = kind;
            params.seed = kSuiteSeed;
            params.size = kSuiteSize;
            params.trains = kSuiteTrains;
            const auto scenario = gen::generate(params);
            const core::Instance instance(scenario.network, scenario.trains,
                                          scenario.schedule, params.resolution);
            const auto finest = core::VssLayout::finest(instance.graph());
            recordPruning(scenario.name, instance);

            std::optional<bool> agreed;
            for (const BackendSpec& spec : specs) {
                const auto result = core::verifySchedule(instance, finest, spec.options);
                recordResult(scenario.name, spec.name, result);
                std::cout << std::setw(34) << scenario.name << std::setw(12) << spec.name
                          << std::setw(12) << (result.feasible ? "SAT" : "UNSAT")
                          << std::setw(8) << result.stats.numVariables << std::setw(9)
                          << result.stats.numClauses << std::setw(10)
                          << result.stats.conflicts << std::setw(12) << std::fixed
                          << std::setprecision(3) << result.stats.runtimeSeconds << "\n";
                if (agreed && *agreed != result.feasible) {
                    std::cerr << "FAIL: backend verdict mismatch on " << scenario.name
                              << " (" << spec.name << ")\n";
                    ++failures;
                }
                if (!agreed) {
                    agreed = result.feasible;
                }
                if (kind == gen::ScheduleKind::Feasible && !result.feasible) {
                    std::cerr << "FAIL: feasible-by-construction instance "
                              << scenario.name << " reported UNSAT by " << spec.name
                              << "\n";
                    ++failures;
                }
                if (kind == gen::ScheduleKind::Infeasible && result.feasible) {
                    std::cerr << "FAIL: provably infeasible instance " << scenario.name
                              << " reported SAT by " << spec.name << "\n";
                    ++failures;
                }
            }
        }
    }
    std::cout << "\n";

    const char* metricsFile = "BENCH_suite.json";
    if (obs::Registry::global().writeJsonFile(metricsFile)) {
        std::cout << "metrics written to " << metricsFile << "\n";
    }
    if (failures > 0) {
        std::cerr << failures << " suite check(s) failed\n";
        return 1;
    }
    std::cout << "all verdicts agree across " << specs.size() << " backends\n";
    return 0;
}
